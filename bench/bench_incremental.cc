// Incremental epoch latency vs full re-evaluation.
//
// The claim under test: with epoch-based evaluation, absorbing a fact
// delta costs proportional to the delta, not the database. For each
// workload and delta size (1% and 10% of the EDB) this bench measures
//   full:  evaluating the union of the facts from scratch, and
//   epoch: AddFacts(delta) + Update() on an engine already at fixpoint
//          over the other (100 - delta)% of the facts,
// checks both land on the same result cardinality, and reports the
// speedup. Machine-readable INCREMENTAL lines feed the "incremental"
// section of scripts/run_benches.sh's JSON snapshot (carac-bench/v3).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/factgen.h"
#include "analysis/programs.h"
#include "bench_common.h"
#include "core/engine.h"
#include "util/timer.h"

namespace {

using namespace carac;

constexpr int kReps = 3;

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Per-relation fact lists of a freshly built workload (construction
/// inserts facts into Derived), split into a head (the pre-loaded
/// database) and a tail (the update batch) of ~`delta_frac` per relation.
struct FactSplit {
  std::vector<std::vector<storage::Tuple>> head;
  std::vector<std::vector<storage::Tuple>> tail;
  size_t tail_rows = 0;
};

FactSplit SplitFacts(const analysis::Workload& w, double delta_frac) {
  const storage::DatabaseSet& db = w.program->db();
  FactSplit split;
  split.head.resize(db.NumRelations());
  split.tail.resize(db.NumRelations());
  for (storage::RelationId id = 0; id < db.NumRelations(); ++id) {
    const storage::Relation& rel = db.Get(id, storage::DbKind::kDerived);
    const size_t rows = rel.NumRows();
    const size_t tail_n =
        rows >= 10 ? std::max<size_t>(1, static_cast<size_t>(
                                            static_cast<double>(rows) *
                                            delta_frac))
                   : 0;
    for (storage::RowId row = 0; row < rows; ++row) {
      auto& dest = row < rows - tail_n ? split.head[id] : split.tail[id];
      dest.push_back(rel.View(row).ToTuple());
    }
    split.tail_rows += split.tail[id].size();
  }
  return split;
}

struct IncResult {
  double full_seconds = 0;
  double epoch_seconds = 0;
  size_t output_rows = 0;
  size_t delta_rows = 0;
  bool consistent = true;
};

/// `make` must rebuild the identical workload on every call (the fact
/// generators are seeded, so it does).
IncResult Measure(const harness::WorkloadFactory& make,
                  const core::EngineConfig& config, double delta_frac) {
  IncResult result;

  // Full evaluation over the union of the facts: the shared harness
  // methodology (fresh engine per rep, Prepare() excluded, median kept).
  const harness::Measurement full =
      harness::MeasureMedian(make, config, kReps);
  CARAC_CHECK(full.ok);
  result.full_seconds = full.seconds;
  result.output_rows = full.result_size;

  // Incremental: pre-load all but the delta, reach fixpoint (untimed),
  // then time AddFacts + Update alone — the steady-state serving cost.
  std::vector<double> epoch_times;
  for (int rep = 0; rep < kReps; ++rep) {
    analysis::Workload w = make();
    const FactSplit split = SplitFacts(w, delta_frac);
    storage::DatabaseSet& db = w.program->db();
    for (storage::RelationId id = 0; id < db.NumRelations(); ++id) {
      db.ClearFacts(id);
    }
    core::Engine engine(w.program.get(), config);
    for (storage::RelationId id = 0; id < db.NumRelations(); ++id) {
      CARAC_CHECK_OK(engine.AddFacts(id, split.head[id]));
    }
    CARAC_CHECK_OK(engine.Prepare());
    CARAC_CHECK_OK(engine.Run());
    util::Timer timer;
    for (storage::RelationId id = 0; id < db.NumRelations(); ++id) {
      CARAC_CHECK_OK(engine.AddFacts(id, split.tail[id]));
    }
    CARAC_CHECK_OK(engine.Update());
    epoch_times.push_back(timer.ElapsedSeconds());
    result.delta_rows = split.tail_rows;
    if (engine.ResultSize(w.output) != result.output_rows) {
      result.consistent = false;
    }
  }
  result.epoch_seconds = Median(epoch_times);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  // --threads applies to BOTH arms (full and epoch), so the reported
  // speedup stays an apples-to-apples comparison at that pool width.
  core::EngineConfig config;
  config.num_threads = bench::ThreadsFromArgs(argc, argv);
  const bench::Sizes sizes = bench::Sizes::Get();
  // Edge/vertex ratio 1.5 keeps the closure sparse enough that a 1%
  // edge delta derives a proportionally small path delta; denser graphs
  // (ratio 3) make 1% of the edges rewrite >10% of the closure, which
  // caps the measurable speedup at the workload's physics rather than
  // the engine's epoch overhead.
  const int64_t tc_vertices = bench::LargeScale() ? 30000 : 10000;
  const int64_t tc_edges = bench::LargeScale() ? 45000 : 15000;

  std::printf("Incremental epochs: update latency vs full re-evaluation\n");
  std::printf("(tc: %lld vertices / %lld edges; andersen: slist scale "
              "%lld; threads=%d; median of %d)\n\n",
              static_cast<long long>(tc_vertices),
              static_cast<long long>(tc_edges),
              static_cast<long long>(sizes.slist_scale), config.num_threads,
              kReps);

  struct Spec {
    const char* name;
    harness::WorkloadFactory make;
  };
  const std::vector<Spec> specs = {
      {"tc",
       [&] {
         return analysis::MakeTransitiveClosure(
             analysis::GenerateSparseGraph(/*seed=*/11, tc_vertices,
                                           tc_edges, /*zipf_s=*/1.1),
             analysis::RuleOrder::kHandOptimized);
       }},
      {"andersen",
       [&] {
         analysis::SListConfig config;
         config.scale = sizes.slist_scale;
         return analysis::MakeAndersen(config,
                                       analysis::RuleOrder::kHandOptimized);
       }},
  };

  harness::TablePrinter table({"workload", "delta", "full (s)", "epoch (s)",
                               "speedup", "output rows"});
  bool all_consistent = true;
  for (const Spec& spec : specs) {
    for (int pct : {1, 10}) {
      const IncResult r = Measure(spec.make, config, pct / 100.0);
      all_consistent &= r.consistent;
      const double speedup =
          r.epoch_seconds > 0 ? r.full_seconds / r.epoch_seconds : 0;
      table.AddRow({spec.name, std::to_string(pct) + "% (" +
                                   std::to_string(r.delta_rows) + " rows)",
                    harness::FormatSeconds(r.full_seconds),
                    harness::FormatSeconds(r.epoch_seconds),
                    harness::FormatSpeedup(speedup),
                    std::to_string(r.output_rows)});
      std::printf("INCREMENTAL %s delta_pct=%d full=%.6f epoch=%.6f "
                  "speedup=%.2f\n",
                  spec.name, pct, r.full_seconds, r.epoch_seconds, speedup);
    }
  }
  std::printf("\n");
  table.Print();
  if (!all_consistent) {
    std::fprintf(stderr,
                 "error: incremental epoch diverged from full evaluation\n");
    return 1;
  }
  return 0;
}
