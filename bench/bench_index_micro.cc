// Index-subsystem micro-costs, per index organization: insert, point
// probe, range probe and batched probe throughput of every IndexKind
// over the same relation contents. These are the constants the
// --index-kind ablation (EXPERIMENTS.md) stands on, and the direct
// evidence for the two headline claims of the pluggable-index design:
//
//   range    the immutable sorted-array prefix scans a contiguous
//            (key,row) array, versus pointer-chasing a std::map — the
//            range-heavy win.
//   batch    BatchProbe resolves a window of outer keys in one call and
//            skips equal-adjacent keys entirely; on duplicate-heavy
//            outer sequences (the shape of a skewed join) it beats the
//            point-probe loop — the probe-dominated win.
//   upoint   point probes over a UNIQUE-key relation (every key one row,
//            the classic learned-index setting): at this cardinality the
//            hash table outgrows cache while the learned model's segment
//            directory plus a ±ε window stays within a few lines — where
//            kLearned closes on (or beats) kHash and leaves the
//            kSorted/kBtree binary searches behind.
//
// Machine-readable INDEX lines feed the "index" section of
// scripts/run_benches.sh's JSON snapshot (carac-bench/v5). `--micro`
// shrinks the workload to a sub-second slice for the CI bench-smoke job.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/table.h"
#include "storage/index.h"
#include "storage/relation.h"
#include "util/status.h"
#include "util/timer.h"

namespace {

using namespace carac;
using storage::IndexKind;
using storage::Relation;
using storage::RowCursor;
using storage::RowId;
using storage::Value;

constexpr IndexKind kAllKinds[] = {IndexKind::kHash, IndexKind::kSorted,
                                   IndexKind::kBtree, IndexKind::kSortedArray,
                                   IndexKind::kLearned};

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct Sizes {
  int64_t rows;
  int64_t keys;      // distinct key values; postings per key = rows/keys
  int64_t span;      // range-probe width, in key values
  int64_t dup_run;   // consecutive repeats per key in the batch sequence
  int64_t window;    // keys per BatchProbe call
  int reps;
};

Sizes GetSizes(bool micro) {
  if (micro) return {20000, 256, 16, 4, 64, 3};
  return {200000, 1024, 64, 4, 64, 5};
}

/// One relation per kind, identical contents: keys round-robin over
/// [0, keys), so every key has rows/keys postings and probe results are
/// multi-row (the join shape, not a unique-key lookup). The watermark is
/// advanced after the bulk load — the sorted-array kind measures its
/// stable prefix, which is where evaluation spends its probes (body
/// atoms read Derived/DeltaKnown, both stabilized at epoch boundaries).
void BuildRelation(IndexKind kind, const Sizes& s, Relation* rel,
                   double* insert_s) {
  util::Timer timer;
  rel->DeclareIndex(0, kind);
  for (int64_t i = 0; i < s.rows; ++i) {
    rel->Insert({i % s.keys, i});
  }
  *insert_s = timer.ElapsedSeconds();
  rel->AdvanceWatermark();
}

/// Unique-key key function: strictly increasing (gap >= 3), mildly
/// nonlinear so the learned fit needs real segments, not one line.
Value UniqueKey(int64_t i) { return i * 13 + (i % 11); }

/// Unique-key relation, scrambled insertion order (fair to the B-tree's
/// split path and the hash table's growth path alike); the watermark
/// advance stabilizes and fits the ordered kinds.
void BuildUniqueRelation(IndexKind kind, const Sizes& s, Relation* rel) {
  rel->DeclareIndex(0, kind);
  for (int64_t j = 0; j < s.rows; ++j) {
    const int64_t i = (j * 48271) % s.rows;  // 48271 coprime to the sizes.
    rel->Insert({UniqueKey(i), i});
  }
  rel->AdvanceWatermark();
}

double MeasureUniquePointProbe(const Relation& rel, const Sizes& s) {
  std::vector<double> times;
  for (int rep = 0; rep < s.reps; ++rep) {
    util::Timer timer;
    size_t hits = 0;
    for (int64_t j = 0; j < s.rows; ++j) {
      const int64_t i = (j * 2654435761) % s.rows;  // Random-order keys.
      hits += rel.Probe(0, UniqueKey(i)).size();
    }
    times.push_back(timer.ElapsedSeconds());
    if (hits != static_cast<size_t>(s.rows)) {
      std::fprintf(stderr, "error: unique probe lost rows (%zu != %lld)\n",
                   hits, static_cast<long long>(s.rows));
      std::exit(1);
    }
  }
  return Median(times);
}

double MeasurePointProbe(const Relation& rel, const Sizes& s) {
  std::vector<double> times;
  for (int rep = 0; rep < s.reps; ++rep) {
    util::Timer timer;
    size_t hits = 0;
    for (int64_t key = 0; key < s.keys; ++key) {
      hits += rel.Probe(0, key).size();
    }
    times.push_back(timer.ElapsedSeconds());
    if (hits != static_cast<size_t>(s.rows)) {
      std::fprintf(stderr, "error: point probe lost rows (%zu != %lld)\n",
                   hits, static_cast<long long>(s.rows));
      std::exit(1);
    }
  }
  return Median(times);
}

/// Sliding [lo, lo+span] sweeps across the whole key domain; every
/// ordered kind must return the same total row count.
double MeasureRangeProbe(const Relation& rel, const Sizes& s,
                         size_t* total_rows) {
  std::vector<double> times;
  for (int rep = 0; rep < s.reps; ++rep) {
    util::Timer timer;
    size_t rows = 0;
    std::vector<RowId> out;
    for (int64_t lo = 0; lo + s.span <= s.keys; lo += s.span) {
      out.clear();
      CARAC_CHECK_OK(rel.ProbeRange(0, lo, lo + s.span - 1, &out));
      rows += out.size();
    }
    times.push_back(timer.ElapsedSeconds());
    *total_rows = rows;
  }
  return Median(times);
}

/// The duplicate-heavy outer sequence: each key repeated dup_run times
/// consecutively (a sorted/skewed outer join side), resolved through
/// BatchProbe in `window`-key calls versus one Probe per key.
void MeasureBatch(const Relation& rel, const Sizes& s, double* batch_s,
                  double* point_s) {
  std::vector<Value> seq;
  seq.reserve(static_cast<size_t>(s.keys * s.dup_run));
  for (int64_t key = 0; key < s.keys; ++key) {
    for (int64_t d = 0; d < s.dup_run; ++d) seq.push_back(key);
  }
  std::vector<RowCursor> cursors(static_cast<size_t>(s.window));

  std::vector<double> batch_times, point_times;
  size_t batch_hits = 0, point_hits = 0;
  for (int rep = 0; rep < s.reps; ++rep) {
    util::Timer timer;
    batch_hits = 0;
    for (size_t at = 0; at < seq.size(); at += static_cast<size_t>(s.window)) {
      const size_t n =
          std::min(static_cast<size_t>(s.window), seq.size() - at);
      rel.BatchProbe(0, seq.data() + at, n, cursors.data());
      for (size_t i = 0; i < n; ++i) batch_hits += cursors[i].size();
    }
    batch_times.push_back(timer.ElapsedSeconds());

    timer.Restart();
    point_hits = 0;
    for (Value key : seq) {
      point_hits += rel.Probe(0, key).size();
    }
    point_times.push_back(timer.ElapsedSeconds());
  }
  if (batch_hits != point_hits) {
    std::fprintf(stderr, "error: batch probe diverged (%zu != %zu)\n",
                 batch_hits, point_hits);
    std::exit(1);
  }
  *batch_s = Median(batch_times);
  *point_s = Median(point_times);
}

double Mops(int64_t ops, double seconds) {
  return seconds > 0 ? static_cast<double>(ops) / seconds / 1e6 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool micro = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--micro") == 0) {
      micro = true;
    } else {
      std::fprintf(stderr, "usage: %s [--micro]\n", argv[0]);
      return 2;
    }
  }
  const Sizes s = GetSizes(micro);

  std::printf("Index micro: %lld rows, %lld keys, per-kind "
              "insert/probe/range/batch (median of %d)\n\n",
              static_cast<long long>(s.rows), static_cast<long long>(s.keys),
              s.reps);

  harness::TablePrinter table({"kind", "insert (s)", "probe (Mop/s)",
                               "range (Mrow/s)", "batch vs point"});
  for (IndexKind kind : kAllKinds) {
    double insert_s = 0;
    Relation rel("R", 2);
    BuildRelation(kind, s, &rel, &insert_s);

    const double probe_s = MeasurePointProbe(rel, s);
    std::printf("INDEX %s probe rows=%lld keys=%lld seconds=%.6f "
                "mprobes=%.2f\n",
                storage::IndexKindName(kind),
                static_cast<long long>(s.rows),
                static_cast<long long>(s.keys), probe_s,
                Mops(s.keys, probe_s));
    std::printf("INDEX %s insert rows=%lld seconds=%.6f mrows=%.2f\n",
                storage::IndexKindName(kind),
                static_cast<long long>(s.rows), insert_s,
                Mops(s.rows, insert_s));

    {
      Relation urel("U", 2);
      BuildUniqueRelation(kind, s, &urel);
      const double upoint_s = MeasureUniquePointProbe(urel, s);
      std::printf("INDEX %s upoint rows=%lld seconds=%.6f mprobes=%.2f\n",
                  storage::IndexKindName(kind),
                  static_cast<long long>(s.rows), upoint_s,
                  Mops(s.rows, upoint_s));
    }

    double range_s = 0;
    size_t range_rows = 0;
    std::string range_cell = "-";
    if (storage::IndexKindIsOrdered(kind)) {
      range_s = MeasureRangeProbe(rel, s, &range_rows);
      std::printf("INDEX %s range rows=%lld span=%lld seconds=%.6f "
                  "mrows=%.2f\n",
                  storage::IndexKindName(kind),
                  static_cast<long long>(s.rows),
                  static_cast<long long>(s.span), range_s,
                  Mops(static_cast<int64_t>(range_rows), range_s));
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.1f",
                    Mops(static_cast<int64_t>(range_rows), range_s));
      range_cell = buf;
    }

    double batch_s = 0, point_s = 0;
    MeasureBatch(rel, s, &batch_s, &point_s);
    const double speedup = batch_s > 0 ? point_s / batch_s : 0;
    std::printf("INDEX %s batch rows=%lld window=%lld dup_run=%lld "
                "batch_s=%.6f point_s=%.6f speedup=%.2f\n",
                storage::IndexKindName(kind),
                static_cast<long long>(s.rows),
                static_cast<long long>(s.window),
                static_cast<long long>(s.dup_run), batch_s, point_s,
                speedup);

    char insert_cell[32], probe_cell[32], batch_cell[32];
    std::snprintf(insert_cell, sizeof insert_cell, "%.3f", insert_s);
    std::snprintf(probe_cell, sizeof probe_cell, "%.2f",
                  Mops(s.keys, probe_s));
    std::snprintf(batch_cell, sizeof batch_cell, "%.2fx", speedup);
    table.AddRow({storage::IndexKindName(kind), insert_cell, probe_cell,
                  range_cell, batch_cell});
  }
  std::printf("\n");
  table.Print();
  return 0;
}
