// Reproduces Table II: average execution time (s) of DLX, Soufflé
// (interpreter / compiler / auto-tuned) and Carac JIT on InvFuns, CSDA and
// CSPA. The comparators are behavioural analogs built in this repository
// (see DESIGN.md §2): Soufflé-compiler pays a real C++ compiler invocation
// inside the measured time; DLX is a naive-evaluation engine with a
// timeout that reports DNF.

#include <cstdio>

#include "baselines/dlx_like.h"
#include "baselines/souffle_like.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace carac;
  const int threads = bench::ThreadsFromArgs(argc, argv);
  const bench::Sizes sizes = bench::Sizes::Get();
  const double dlx_timeout = bench::LargeScale() ? 300.0 : 60.0;

  std::printf("Table II: execution time (s) of DLX-like, Souffle-like and "
              "Carac JIT%s\n\n",
              threads > 1
                  ? (" (Carac threads=" + std::to_string(threads) + ")")
                        .c_str()
                  : "");
  harness::TablePrinter table({"benchmark", "DLX", "Souffle interp",
                               "Souffle compiler", "Souffle auto-tuned",
                               "Carac JIT"});

  for (const char* name : {"InvFuns", "CSDA", "CSPA"}) {
    // Table II uses the hand-optimized formulations (engines receive the
    // program as an expert would write it).
    auto factory =
        bench::Factory(name, analysis::RuleOrder::kHandOptimized, sizes);

    baselines::DlxResult dlx = baselines::RunDlxLike(factory, dlx_timeout);
    auto souffle = [&](baselines::SouffleMode mode) -> std::string {
      baselines::BaselineResult r = baselines::RunSouffleLike(factory, mode);
      return r.ok ? harness::FormatSeconds(r.seconds) : "err";
    };
    // Carac JIT: full mode, blocking, at the sigma-pi-join granularity
    // that sees delta relations (the configuration Table II names). The
    // comparator engines have no worker pool, so --threads widens only
    // the Carac column.
    core::EngineConfig carac_config = harness::JitConfigOf(
        backends::BackendKind::kLambda, /*async=*/false,
        /*use_indexes=*/true, core::Granularity::kSpj,
        backends::CompileMode::kFull);
    carac_config.num_threads = threads;
    harness::Measurement carac =
        harness::MeasureMedian(factory, carac_config, sizes.reps);

    table.AddRow({name,
                  dlx.dnf ? "DNF" : harness::FormatSeconds(dlx.seconds),
                  souffle(baselines::SouffleMode::kInterpreter),
                  souffle(baselines::SouffleMode::kCompiler),
                  souffle(baselines::SouffleMode::kAutoTuned),
                  carac.ok ? harness::FormatSeconds(carac.seconds) : "err"});
  }
  table.Print();
  std::printf("\nExpected shape: Carac wins InvFuns (no full-compiler "
              "invocation); the compiled\nengine wins the largest "
              "long-running analyses; DLX trails or DNFs.\n");
  return 0;
}
