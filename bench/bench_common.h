#ifndef CARAC_BENCH_BENCH_COMMON_H_
#define CARAC_BENCH_BENCH_COMMON_H_

// Shared workload sizing for the paper-reproduction benches. The paper's
// datasets (httpd: 1.5M facts) are scaled down so every bench binary
// finishes in seconds-to-minutes on a laptop; the *shape* of each result
// (who wins, rough factors, crossovers) is what EXPERIMENTS.md compares.
// CARAC_BENCH_SCALE=large restores bigger inputs.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/programs.h"
#include "harness/runner.h"
#include "harness/table.h"

namespace carac::bench {

inline bool LargeScale() {
  const char* scale = std::getenv("CARAC_BENCH_SCALE");
  return scale != nullptr && std::string(scale) == "large";
}

struct Sizes {
  int64_t ack_bound;
  int64_t fib_n;
  int64_t primes_n;
  int64_t slist_scale;
  int64_t csda_length;
  int64_t cspa_tuples;       // The "CSPA 20k" analog.
  int reps;

  static Sizes Get() {
    if (LargeScale()) {
      return {61, 25, 2000, 4, 8000, 20000, 3};
    }
    return {61, 25, 500, 1, 1500, 400, 1};
  }
};

inline harness::WorkloadFactory Factory(const std::string& name,
                                        analysis::RuleOrder order,
                                        const Sizes& sizes) {
  using namespace analysis;
  if (name == "Ackermann") {
    return [=] { return MakeAckermann(sizes.ack_bound, order); };
  }
  if (name == "Fibonacci") {
    return [=] { return MakeFibonacci(sizes.fib_n, order); };
  }
  if (name == "Primes") {
    return [=] { return MakePrimes(sizes.primes_n, order); };
  }
  if (name == "Andersen") {
    SListConfig config;
    config.scale = sizes.slist_scale;
    return [=] { return MakeAndersen(config, order); };
  }
  if (name == "InvFuns") {
    SListConfig config;
    config.scale = sizes.slist_scale;
    return [=] { return MakeInverseFunctions(config, order); };
  }
  if (name == "CSDA") {
    CsdaConfig config;
    config.length = sizes.csda_length;
    return [=] { return MakeCsda(config); };
  }
  if (name == "CSPA") {
    CspaConfig config;
    config.total_tuples = sizes.cspa_tuples;
    return [=] { return MakeCspa(config, order); };
  }
  return nullptr;
}

/// The seven configurations of Figs. 6-9 (Hand-Optimized is only included
/// when the baseline is the unoptimized program).
struct JitRowSpec {
  const char* label;
  backends::BackendKind backend;
  bool async;
};

inline const std::vector<JitRowSpec>& JitRows() {
  static const std::vector<JitRowSpec>* rows = new std::vector<JitRowSpec>{
      {"JIT IRGenerator", backends::BackendKind::kIRGenerator, false},
      {"JIT Lambda Blocking", backends::BackendKind::kLambda, false},
      {"JIT Bytecode Async", backends::BackendKind::kBytecode, true},
      {"JIT Bytecode Blocking", backends::BackendKind::kBytecode, false},
      {"JIT Quotes Async", backends::BackendKind::kQuotes, true},
      {"JIT Quotes Blocking", backends::BackendKind::kQuotes, false},
  };
  return *rows;
}

struct FigureBenchmark {
  std::string name;
  bool indexed_only = false;  // CSDA / CSPA run indexed only (paper §VI-B).
};

/// Shared driver for Figs. 6-9: speedup of each JIT configuration over the
/// interpreted `baseline_order` program, with the JIT consuming
/// `input_order` programs. Prints one row per configuration with indexed
/// and unindexed columns per benchmark.
inline void PrintSpeedupFigure(const std::string& title,
                               const std::vector<FigureBenchmark>& benchmarks,
                               analysis::RuleOrder input_order,
                               bool include_hand_row, const Sizes& sizes) {
  std::printf("%s\n\n", title.c_str());

  std::vector<std::string> headers = {"configuration"};
  for (const FigureBenchmark& b : benchmarks) {
    headers.push_back(b.name + " idx");
    headers.push_back(b.name + " unidx");
  }
  harness::TablePrinter table(headers);

  // Baselines per benchmark x index setting.
  struct Baseline {
    double indexed = 0, unindexed = 0;
  };
  std::vector<Baseline> baselines;
  for (const FigureBenchmark& b : benchmarks) {
    Baseline base;
    auto factory = Factory(b.name, input_order, sizes);
    base.indexed = harness::MeasureMedian(factory,
                                          harness::InterpretedConfig(true),
                                          sizes.reps)
                       .seconds;
    if (!b.indexed_only) {
      base.unindexed = harness::MeasureMedian(
                           factory, harness::InterpretedConfig(false),
                           sizes.reps)
                           .seconds;
    }
    baselines.push_back(base);
  }

  auto speedup_cell = [](double base, double measured) -> std::string {
    if (base <= 0 || measured <= 0) return "-";
    return harness::FormatSpeedup(base / measured);
  };

  if (include_hand_row) {
    std::vector<std::string> row = {"Hand-Optimized (interp)"};
    for (size_t i = 0; i < benchmarks.size(); ++i) {
      auto factory = Factory(benchmarks[i].name,
                             analysis::RuleOrder::kHandOptimized, sizes);
      const double idx = harness::MeasureMedian(
                             factory, harness::InterpretedConfig(true),
                             sizes.reps)
                             .seconds;
      row.push_back(speedup_cell(baselines[i].indexed, idx));
      if (benchmarks[i].indexed_only) {
        row.push_back("-");
      } else {
        const double unidx = harness::MeasureMedian(
                                 factory, harness::InterpretedConfig(false),
                                 sizes.reps)
                                 .seconds;
        row.push_back(speedup_cell(baselines[i].unindexed, unidx));
      }
    }
    table.AddRow(std::move(row));
  }

  for (const JitRowSpec& spec : JitRows()) {
    std::vector<std::string> row = {spec.label};
    for (size_t i = 0; i < benchmarks.size(); ++i) {
      auto factory = Factory(benchmarks[i].name, input_order, sizes);
      auto run = [&](bool indexes) {
        return harness::MeasureMedian(
                   factory,
                   harness::JitConfigOf(spec.backend, spec.async, indexes,
                                        core::Granularity::kUnion,
                                        backends::CompileMode::kFull),
                   sizes.reps)
            .seconds;
      };
      row.push_back(speedup_cell(baselines[i].indexed, run(true)));
      row.push_back(benchmarks[i].indexed_only
                        ? "-"
                        : speedup_cell(baselines[i].unindexed, run(false)));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace carac::bench

#endif  // CARAC_BENCH_BENCH_COMMON_H_
