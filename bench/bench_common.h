#ifndef CARAC_BENCH_BENCH_COMMON_H_
#define CARAC_BENCH_BENCH_COMMON_H_

// Shared workload sizing for the paper-reproduction benches. The paper's
// datasets (httpd: 1.5M facts) are scaled down so every bench binary
// finishes in seconds-to-minutes on a laptop; the *shape* of each result
// (who wins, rough factors, crossovers) is what EXPERIMENTS.md compares.
// CARAC_BENCH_SCALE=large restores bigger inputs.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/programs.h"
#include "harness/runner.h"
#include "harness/table.h"
#include "util/parse.h"

namespace carac::bench {

inline bool LargeScale() {
  const char* scale = std::getenv("CARAC_BENCH_SCALE");
  return scale != nullptr && std::string(scale) == "large";
}

/// Parses the one flag the bench mains accept, `--threads N` (evaluation
/// threads for the Carac engine configurations; 1 = the single-threaded
/// runs every earlier BENCH_*.json was recorded with). Exits 2 on
/// malformed input so scripts/run_benches.sh surfaces the mistake.
inline int ThreadsFromArgs(int argc, char** argv) {
  int64_t threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--threads" && i + 1 < argc) {
      if (!util::ParseInt64(argv[i + 1], &threads) || threads < 1 ||
          threads > 256) {
        std::fprintf(stderr,
                     "error: --threads wants an integer in [1, 256], got "
                     "\"%s\"\n",
                     argv[i + 1]);
        std::exit(2);
      }
      ++i;
    } else {
      std::fprintf(stderr, "usage: %s [--threads N]\n", argv[0]);
      std::exit(2);
    }
  }
  return static_cast<int>(threads);
}

struct Sizes {
  int64_t ack_bound;
  int64_t fib_n;
  int64_t primes_n;
  int64_t slist_scale;
  int64_t csda_length;
  int64_t cspa_tuples;       // The "CSPA 20k" analog.
  int reps;

  static Sizes Get() {
    if (LargeScale()) {
      return {61, 25, 2000, 4, 8000, 20000, 3};
    }
    return {61, 25, 500, 1, 1500, 400, 1};
  }
};

inline harness::WorkloadFactory Factory(const std::string& name,
                                        analysis::RuleOrder order,
                                        const Sizes& sizes) {
  using namespace analysis;
  if (name == "Ackermann") {
    return [=] { return MakeAckermann(sizes.ack_bound, order); };
  }
  if (name == "Fibonacci") {
    return [=] { return MakeFibonacci(sizes.fib_n, order); };
  }
  if (name == "Primes") {
    return [=] { return MakePrimes(sizes.primes_n, order); };
  }
  if (name == "Andersen") {
    SListConfig config;
    config.scale = sizes.slist_scale;
    return [=] { return MakeAndersen(config, order); };
  }
  if (name == "InvFuns") {
    SListConfig config;
    config.scale = sizes.slist_scale;
    return [=] { return MakeInverseFunctions(config, order); };
  }
  if (name == "CSDA") {
    CsdaConfig config;
    config.length = sizes.csda_length;
    return [=] { return MakeCsda(config); };
  }
  if (name == "CSPA") {
    CspaConfig config;
    config.total_tuples = sizes.cspa_tuples;
    return [=] { return MakeCspa(config, order); };
  }
  return nullptr;
}

/// The seven configurations of Figs. 6-9 (Hand-Optimized is only included
/// when the baseline is the unoptimized program).
struct JitRowSpec {
  const char* label;
  backends::BackendKind backend;
  bool async;
};

inline const std::vector<JitRowSpec>& JitRows() {
  static const std::vector<JitRowSpec>* rows = new std::vector<JitRowSpec>{
      {"JIT IRGenerator", backends::BackendKind::kIRGenerator, false},
      {"JIT Lambda Blocking", backends::BackendKind::kLambda, false},
      {"JIT Bytecode Async", backends::BackendKind::kBytecode, true},
      {"JIT Bytecode Blocking", backends::BackendKind::kBytecode, false},
      {"JIT Quotes Async", backends::BackendKind::kQuotes, true},
      {"JIT Quotes Blocking", backends::BackendKind::kQuotes, false},
  };
  return *rows;
}

struct FigureBenchmark {
  std::string name;
  bool indexed_only = false;  // CSDA / CSPA run indexed only (paper §VI-B).
};

/// Shared driver for Figs. 6-9: speedup of each JIT configuration over the
/// interpreted `baseline_order` program, with the JIT consuming
/// `input_order` programs. Prints one row per configuration with indexed
/// and unindexed columns per benchmark.
inline void PrintSpeedupFigure(const std::string& title,
                               const std::vector<FigureBenchmark>& benchmarks,
                               analysis::RuleOrder input_order,
                               bool include_hand_row, const Sizes& sizes,
                               int num_threads = 1) {
  // The --threads dimension: every configuration gets the same
  // EngineConfig::num_threads, but only interpreted execution and
  // lambda-backend subqueries consume the pool — the bytecode, quotes
  // and IRGenerator compiled loops are single-threaded. At threads > 1
  // the figure therefore answers "what does enabling an N-thread pool do
  // to each configuration as-is", NOT "how does each backend scale"; the
  // printed note keeps recorded snapshots from being misread.
  auto with_threads = [num_threads](core::EngineConfig config) {
    config.num_threads = num_threads;
    return config;
  };
  if (num_threads > 1) {
    std::printf("%s (threads=%d)\n\n", title.c_str(), num_threads);
    std::printf("note: num_threads parallelizes interpreted and "
                "lambda-backend subqueries only;\nbytecode/quotes/irgen "
                "compiled loops stay single-threaded, so JIT rows are\n"
                "NOT thread-scaled — compare against the equally-threaded "
                "interpreted baseline\nwith that in mind.\n\n");
  } else {
    std::printf("%s\n\n", title.c_str());
  }

  std::vector<std::string> headers = {"configuration"};
  for (const FigureBenchmark& b : benchmarks) {
    headers.push_back(b.name + " idx");
    headers.push_back(b.name + " unidx");
  }
  harness::TablePrinter table(headers);

  // Baselines per benchmark x index setting.
  struct Baseline {
    double indexed = 0, unindexed = 0;
  };
  std::vector<Baseline> baselines;
  for (const FigureBenchmark& b : benchmarks) {
    Baseline base;
    auto factory = Factory(b.name, input_order, sizes);
    base.indexed =
        harness::MeasureMedian(factory,
                               with_threads(harness::InterpretedConfig(true)),
                               sizes.reps)
            .seconds;
    if (!b.indexed_only) {
      base.unindexed =
          harness::MeasureMedian(
              factory, with_threads(harness::InterpretedConfig(false)),
              sizes.reps)
              .seconds;
    }
    baselines.push_back(base);
  }

  auto speedup_cell = [](double base, double measured) -> std::string {
    if (base <= 0 || measured <= 0) return "-";
    return harness::FormatSpeedup(base / measured);
  };

  if (include_hand_row) {
    std::vector<std::string> row = {"Hand-Optimized (interp)"};
    for (size_t i = 0; i < benchmarks.size(); ++i) {
      auto factory = Factory(benchmarks[i].name,
                             analysis::RuleOrder::kHandOptimized, sizes);
      const double idx =
          harness::MeasureMedian(
              factory, with_threads(harness::InterpretedConfig(true)),
              sizes.reps)
              .seconds;
      row.push_back(speedup_cell(baselines[i].indexed, idx));
      if (benchmarks[i].indexed_only) {
        row.push_back("-");
      } else {
        const double unidx =
            harness::MeasureMedian(
                factory, with_threads(harness::InterpretedConfig(false)),
                sizes.reps)
                .seconds;
        row.push_back(speedup_cell(baselines[i].unindexed, unidx));
      }
    }
    table.AddRow(std::move(row));
  }

  for (const JitRowSpec& spec : JitRows()) {
    std::vector<std::string> row = {spec.label};
    for (size_t i = 0; i < benchmarks.size(); ++i) {
      auto factory = Factory(benchmarks[i].name, input_order, sizes);
      auto run = [&](bool indexes) {
        return harness::MeasureMedian(
                   factory,
                   with_threads(harness::JitConfigOf(
                       spec.backend, spec.async, indexes,
                       core::Granularity::kUnion,
                       backends::CompileMode::kFull)),
                   sizes.reps)
            .seconds;
      };
      row.push_back(speedup_cell(baselines[i].indexed, run(true)));
      row.push_back(benchmarks[i].indexed_only
                        ? "-"
                        : speedup_cell(baselines[i].unindexed, run(false)));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace carac::bench

#endif  // CARAC_BENCH_BENCH_COMMON_H_
