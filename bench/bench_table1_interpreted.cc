// Reproduces Table I: average execution time (s) of interpreted Carac
// queries in the four {unindexed, indexed} x {unoptimized, hand-optimized}
// configurations, for every benchmark query.
//
// Like the paper, the long-running graph analyses (CSDA, CSPA) are run
// indexed only, and CSDA has a single formulation (2-way joins only).

#include <cstdio>

#include "bench_common.h"
#include "harness/table.h"

int main() {
  using namespace carac;
  using analysis::RuleOrder;
  const bench::Sizes sizes = bench::Sizes::Get();

  std::printf("Table I: execution time (s) of interpreted Carac queries\n");
  std::printf("(synthetic scaled datasets — see EXPERIMENTS.md)\n\n");

  harness::TablePrinter table({"benchmark", "unindexed unopt",
                               "unindexed opt", "indexed unopt",
                               "indexed opt"});

  struct Row {
    const char* name;
    bool indexed_only;
    bool single_formulation;
  };
  const Row rows[] = {
      {"Ackermann", false, false}, {"Fibonacci", false, false},
      {"Primes", false, false},    {"Andersen", false, false},
      {"InvFuns", false, false},   {"CSDA", true, true},
      {"CSPA", true, false},
  };

  for (const Row& row : rows) {
    auto unopt = bench::Factory(row.name, RuleOrder::kUnoptimized, sizes);
    auto opt = bench::Factory(row.name, RuleOrder::kHandOptimized, sizes);

    auto cell = [&](const harness::WorkloadFactory& factory, bool indexes,
                    bool skip) -> std::string {
      if (skip) return "-";
      harness::Measurement m = harness::MeasureMedian(
          factory, harness::InterpretedConfig(indexes), sizes.reps);
      if (!m.ok) return "err";
      return harness::FormatSeconds(m.seconds);
    };

    table.AddRow({row.name,
                  cell(unopt, false, row.indexed_only),
                  cell(opt, false, row.indexed_only),
                  cell(unopt, true, row.single_formulation),
                  cell(opt, true, false)});
  }
  table.Print();
  std::printf("\nNote: CSDA's unoptimized formulation equals the "
              "hand-optimized one (2-way joins), as in the paper.\n");
  return 0;
}
