// Reproduces Fig. 9: microbenchmark speedup (or slowdown) of the JIT
// configurations applied to already *hand-optimized* inputs.

#include "bench_common.h"

int main() {
  using namespace carac;
  const bench::Sizes sizes = bench::Sizes::Get();
  bench::PrintSpeedupFigure(
      "Fig. 9: microbenchmarks — speedup over \"hand-optimized\"",
      {{"Ackermann", false}, {"Fibonacci", false}, {"Primes", false}},
      analysis::RuleOrder::kHandOptimized,
      /*include_hand_row=*/false, sizes);
  std::printf("\nExpected shape: worst cases fall below 1x (compile cost "
              "is a large fraction of\nvery short runs — the paper reports "
              "~0.1x for Ackermann+quotes-blocking).\n");
  return 0;
}
