// Reproduces Fig. 6: macrobenchmark speedup of the JIT configurations
// over the *unoptimized* interpreted input program (Andersen's Points-To,
// Inverse Functions, CSPA), indexed and unindexed, with the interpreted
// hand-optimized program as the reference bar.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace carac;
  const int threads = bench::ThreadsFromArgs(argc, argv);
  const bench::Sizes sizes = bench::Sizes::Get();
  bench::PrintSpeedupFigure(
      "Fig. 6: macrobenchmarks — speedup over \"unoptimized\"",
      {{"Andersen", false}, {"InvFuns", false}, {"CSPA", true}},
      analysis::RuleOrder::kUnoptimized,
      /*include_hand_row=*/true, sizes, threads);
  std::printf("\nExpected shape: JIT rows recover (and can exceed) the "
              "hand-optimized speedup;\nquotes pays the largest compile "
              "overhead, async beats blocking for quotes.\n");
  return 0;
}
