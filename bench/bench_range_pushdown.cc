// Range-pushdown A/B: the same comparison-filtered Datalog program run
// through core::Engine with --range-pushdown on vs off, per index kind
// and per selectivity. The program's range column carries constant
// bounds, so with pushdown on every ordered kind serves the outer scan
// via Relation::ProbeRange (plus the ascending-RowId re-sort); with
// pushdown off — and on the hash kind, which declines — the same rows
// come from the full filtered scan. The two headline numbers:
//
//   selective     bounds cover ~1% of the key domain: the range probe
//                 touches ~1% of the rows the scan walks — the win the
//                 pushdown exists for.
//   nonselective  bounds cover ~90%: RangeProbeProfitable declines
//                 (coverage > 0.5) and both arms run the identical
//                 filtered scan — the guard against the probe + re-sort
//                 costing more than it saves. Parity here is the point.
//
// Arms are interleaved within each repetition (on/off order alternating
// per rep) so frequency drift lands on both sides equally. Machine-
// readable RANGE lines feed the "range" section of run_benches.sh's
// JSON snapshot (carac-bench/v7). `--micro` shrinks the workload to a
// sub-second slice for the CI bench-smoke job.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/programs.h"
#include "core/engine.h"
#include "datalog/dsl.h"
#include "harness/runner.h"
#include "harness/table.h"
#include "storage/index.h"

namespace {

using namespace carac;
using storage::IndexKind;
using storage::Value;

constexpr IndexKind kAllKinds[] = {IndexKind::kHash, IndexKind::kSorted,
                                   IndexKind::kBtree, IndexKind::kSortedArray,
                                   IndexKind::kLearned};

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct Sizes {
  int64_t rows;  // unique keys, uniform over [0, rows)
  int reps;
};

Sizes GetSizes(bool micro) {
  if (micro) return {50000, 3};
  return {400000, 5};
}

struct Span {
  const char* label;
  Value lo;  // inclusive
  Value hi;  // exclusive (the program uses Ge(lo) & Lt(hi))
};

/// Selective: 1% of the key domain, centered. Nonselective: the middle
/// 90% — past the optimizer's coverage cutoff, so pushdown declines and
/// both arms must land at parity.
std::vector<Span> GetSpans(const Sizes& s) {
  return {
      {"selective", s.rows / 2, s.rows / 2 + s.rows / 100},
      {"nonselective", s.rows / 20, s.rows - s.rows / 20},
  };
}

/// Hit(x, y) :- Big(x, y), x >= lo, x < hi. One key per row (scrambled
/// insertion order, fair to every kind's build path); x occurs in the
/// relational atom and both builtins, so lowering declares the col-0
/// index this bench measures the probe against.
analysis::Workload MakeRangeWorkload(const Sizes& s, const Span& span) {
  analysis::Workload w;
  w.name = std::string("Range-") + span.label;
  w.program = std::make_unique<datalog::Program>();
  datalog::Dsl dsl(w.program.get());
  auto big = dsl.Relation("Big", 2);
  auto hit = dsl.Relation("Hit", 2);
  auto [x, y] = dsl.Vars<2>();
  hit(x, y) <<= big(x, y) & dsl.Ge(x, span.lo) & dsl.Lt(x, span.hi);
  w.output = hit.id();
  w.relations["Big"] = big.id();
  w.relations["Hit"] = hit.id();
  for (int64_t j = 0; j < s.rows; ++j) {
    const int64_t i = (j * 48271) % s.rows;  // 48271 coprime to the sizes.
    w.program->AddFact(big.id(), {i, i % 97});
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  bool micro = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--micro") == 0) {
      micro = true;
    } else {
      std::fprintf(stderr, "usage: %s [--micro]\n", argv[0]);
      return 2;
    }
  }
  const Sizes s = GetSizes(micro);
  const std::vector<Span> spans = GetSpans(s);

  std::printf(
      "Range pushdown A/B: %lld rows, per kind x selectivity, "
      "pushdown on vs off interleaved (median of %d)\n\n",
      static_cast<long long>(s.rows), s.reps);

  harness::TablePrinter table(
      {"kind", "selectivity", "on (s)", "off (s)", "on/off"});
  bool diverged = false;
  for (IndexKind kind : kAllKinds) {
    for (const Span& span : spans) {
      const auto factory = [&]() { return MakeRangeWorkload(s, span); };

      core::EngineConfig on = harness::InterpretedConfig(true);
      on.index_kind = kind;
      on.range_pushdown = true;
      core::EngineConfig off = on;
      off.range_pushdown = false;

      std::vector<double> on_times, off_times;
      size_t on_rows = 0, off_rows = 0;
      for (int rep = 0; rep < s.reps; ++rep) {
        // Alternate arm order per rep: drift hits both sides equally.
        const bool on_first = (rep % 2) == 0;
        for (int leg = 0; leg < 2; ++leg) {
          const bool run_on = on_first == (leg == 0);
          const harness::Measurement m =
              harness::MeasureOnce(factory, run_on ? on : off);
          if (!m.ok) {
            std::fprintf(stderr, "error: %s\n", m.error.c_str());
            return 1;
          }
          (run_on ? on_times : off_times).push_back(m.seconds);
          (run_on ? on_rows : off_rows) = m.result_size;
        }
      }
      if (on_rows != off_rows || on_rows == 0) {
        std::fprintf(stderr,
                     "error: pushdown arms diverged under %s/%s "
                     "(on=%zu off=%zu)\n",
                     storage::IndexKindName(kind), span.label, on_rows,
                     off_rows);
        diverged = true;
      }

      const double on_s = Median(on_times);
      const double off_s = Median(off_times);
      const double speedup = on_s > 0 ? off_s / on_s : 0;
      const double coverage =
          static_cast<double>(span.hi - span.lo) / s.rows;
      std::printf(
          "RANGE %s %s rows=%lld coverage=%.3f matched=%zu on_s=%.6f "
          "off_s=%.6f speedup=%.2f\n",
          storage::IndexKindName(kind), span.label,
          static_cast<long long>(s.rows), coverage, on_rows, on_s, off_s,
          speedup);

      char on_cell[32], off_cell[32], ratio_cell[32];
      std::snprintf(on_cell, sizeof on_cell, "%.4f", on_s);
      std::snprintf(off_cell, sizeof off_cell, "%.4f", off_s);
      std::snprintf(ratio_cell, sizeof ratio_cell, "%.2fx", speedup);
      table.AddRow({storage::IndexKindName(kind), span.label, on_cell,
                    off_cell, ratio_cell});
    }
  }
  std::printf("\n");
  table.Print();
  return diverged ? 1 : 0;
}
