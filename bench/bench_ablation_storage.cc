// Ablation: the paper's storage axis, measured two ways.
//
// Section 1 — engine style (push vs pull, §V-D) crossed with index
// organization (hash vs sorted, the Soufflé-style ordered-index
// extension) on the CSPA macrobenchmark.
//
// Section 2 — storage *layout*: the columnar arena engine
// (storage/relation.h: contiguous row-major arena + open-addressing
// RowId table + RowId index buckets) against a reference node-based
// implementation of the same contract (std::unordered_set<Tuple> nodes +
// const Tuple* index buckets — the layout this engine replaced). Same
// insert/contains/probe workload on both, so the delta isolates exactly
// what the paper's storage ablation isolates: the data-structure
// substrate underneath an unchanged evaluator.

#include <unordered_map>
#include <unordered_set>

#include "analysis/factgen.h"
#include "bench_common.h"
#include "util/timer.h"

namespace {

using namespace carac;
using storage::Tuple;
using storage::TupleHash;
using storage::Value;

/// Reference node-based relation: one heap node per tuple, pointer
/// buckets in the index. Mirrors the pre-arena storage engine.
class NodeRelationRef {
 public:
  bool Insert(const Tuple& t) {
    auto [it, inserted] = rows_.insert(t);
    if (inserted) index0_[(*it)[0]].push_back(&*it);
    return inserted;
  }

  bool Contains(const Tuple& t) const { return rows_.count(t) > 0; }

  const std::vector<const Tuple*>& Probe(Value key) const {
    static const std::vector<const Tuple*> kEmpty;
    auto it = index0_.find(key);
    return it == index0_.end() ? kEmpty : it->second;
  }

 private:
  std::unordered_set<Tuple, TupleHash> rows_;
  std::unordered_map<Value, std::vector<const Tuple*>> index0_;
};

struct LayoutTimes {
  double insert_s = 0;
  double probe_s = 0;
  double contains_s = 0;
  int64_t checksum = 0;  // Defeats dead-code elimination; printed for sanity.
};

/// The workload both layouts run: bulk-insert `edges` (with duplicates
/// re-offered), then sweep column-0 probes summing the probed rows, then
/// a contains pass of half hits / half misses.
constexpr int kProbeSweeps = 40;

LayoutTimes RunArena(const std::vector<analysis::Edge>& edges,
                     int64_t num_vertices) {
  LayoutTimes times;
  storage::Relation rel("R", 2);
  rel.DeclareIndex(0);
  util::Timer timer;
  for (const auto& e : edges) rel.Insert({e.first, e.second});
  for (const auto& e : edges) rel.Insert({e.first, e.second});  // Dups.
  times.insert_s = timer.ElapsedSeconds();

  timer.Restart();
  for (int sweep = 0; sweep < kProbeSweeps; ++sweep) {
    for (int64_t v = 0; v < num_vertices; ++v) {
      for (storage::RowId row : rel.Probe(0, v)) {
        times.checksum += rel.View(row)[1];
      }
    }
  }
  times.probe_s = timer.ElapsedSeconds();

  timer.Restart();
  for (int sweep = 0; sweep < kProbeSweeps; ++sweep) {
    for (const auto& e : edges) {
      times.checksum += rel.Contains({e.first, e.second});
      times.checksum += rel.Contains({e.first, e.second + num_vertices});
    }
  }
  times.contains_s = timer.ElapsedSeconds();
  return times;
}

LayoutTimes RunNodeRef(const std::vector<analysis::Edge>& edges,
                       int64_t num_vertices) {
  LayoutTimes times;
  NodeRelationRef rel;
  util::Timer timer;
  for (const auto& e : edges) rel.Insert({e.first, e.second});
  for (const auto& e : edges) rel.Insert({e.first, e.second});  // Dups.
  times.insert_s = timer.ElapsedSeconds();

  timer.Restart();
  for (int sweep = 0; sweep < kProbeSweeps; ++sweep) {
    for (int64_t v = 0; v < num_vertices; ++v) {
      for (const Tuple* t : rel.Probe(v)) times.checksum += (*t)[1];
    }
  }
  times.probe_s = timer.ElapsedSeconds();

  timer.Restart();
  for (int sweep = 0; sweep < kProbeSweeps; ++sweep) {
    for (const auto& e : edges) {
      times.checksum += rel.Contains({e.first, e.second});
      times.checksum += rel.Contains({e.first, e.second + num_vertices});
    }
  }
  times.contains_s = timer.ElapsedSeconds();
  return times;
}

void PrintLayoutAblation() {
  const int64_t num_vertices = bench::LargeScale() ? 20000 : 4000;
  const int64_t num_edges = num_vertices * 8;
  const auto edges =
      analysis::GenerateSparseGraph(7, num_vertices, num_edges, 1.1);

  std::printf("\nAblation: storage layout (insert+probe+contains, %zu "
              "edges, %d probe sweeps)\n\n",
              edges.size(), kProbeSweeps);
  // Untimed warm-up pass of BOTH layouts first: page-faulting the edges
  // vector, allocator warm-up and CPU frequency ramp must not be charged
  // to whichever layout happens to run first.
  (void)RunNodeRef(edges, num_vertices);
  (void)RunArena(edges, num_vertices);
  const LayoutTimes node = RunNodeRef(edges, num_vertices);
  const LayoutTimes arena = RunArena(edges, num_vertices);
  if (node.checksum != arena.checksum) {
    std::printf("ERROR: layout checksums differ (%lld vs %lld)\n",
                static_cast<long long>(node.checksum),
                static_cast<long long>(arena.checksum));
  }

  harness::TablePrinter table(
      {"layout", "insert (s)", "probe (s)", "contains (s)", "total (s)",
       "speedup"});
  const double node_total = node.insert_s + node.probe_s + node.contains_s;
  const double arena_total =
      arena.insert_s + arena.probe_s + arena.contains_s;
  table.AddRow({"node-based reference", harness::FormatSeconds(node.insert_s),
                harness::FormatSeconds(node.probe_s),
                harness::FormatSeconds(node.contains_s),
                harness::FormatSeconds(node_total), "1.00x"});
  table.AddRow({"columnar arena", harness::FormatSeconds(arena.insert_s),
                harness::FormatSeconds(arena.probe_s),
                harness::FormatSeconds(arena.contains_s),
                harness::FormatSeconds(arena_total),
                harness::FormatSpeedup(node_total / arena_total)});
  table.Print();
  std::printf("\nExpected shape: the arena wins on every column — inserts "
              "append instead of\nallocating nodes, probes chase RowIds "
              "into contiguous memory instead of pointers.\n");
}

}  // namespace

int main() {
  const bench::Sizes sizes = bench::Sizes::Get();
  auto factory = bench::Factory("CSPA", analysis::RuleOrder::kHandOptimized,
                                sizes);

  std::printf("Ablation: engine style x index organization (CSPA, "
              "hand-optimized, interpreted)\n\n");
  harness::TablePrinter table(
      {"configuration", "time (s)", "relative", "VAlias rows"});

  double reference = 0;
  for (ir::EngineStyle style : {ir::EngineStyle::kPush,
                                ir::EngineStyle::kPull}) {
    for (storage::IndexKind kind : {storage::IndexKind::kHash,
                                    storage::IndexKind::kSorted}) {
      core::EngineConfig config = harness::InterpretedConfig(true);
      config.engine_style = style;
      config.index_kind = kind;
      harness::Measurement m =
          harness::MeasureMedian(factory, config, sizes.reps);
      if (reference == 0) reference = m.seconds;
      const std::string label = std::string(ir::EngineStyleName(style)) +
                                " + " + storage::IndexKindName(kind);
      table.AddRow({label, harness::FormatSeconds(m.seconds),
                    harness::FormatSpeedup(reference / m.seconds),
                    std::to_string(m.result_size)});
    }
  }
  table.Print();
  std::printf("\nExpected shape: push vs pull differ only in per-row "
              "overhead; hash probes beat\nsorted probes on point lookups "
              "(sorted buys ordered range scans instead).\n");

  PrintLayoutAblation();
  return 0;
}
