// Ablation: relational-engine style (push vs pull, §V-D) crossed with
// index organization (hash vs sorted, the Soufflé-style ordered-index
// extension) on the CSPA macrobenchmark.

#include "bench_common.h"

int main() {
  using namespace carac;
  const bench::Sizes sizes = bench::Sizes::Get();
  auto factory = bench::Factory("CSPA", analysis::RuleOrder::kHandOptimized,
                                sizes);

  std::printf("Ablation: engine style x index organization (CSPA, "
              "hand-optimized, interpreted)\n\n");
  harness::TablePrinter table(
      {"configuration", "time (s)", "relative", "VAlias rows"});

  double reference = 0;
  for (ir::EngineStyle style : {ir::EngineStyle::kPush,
                                ir::EngineStyle::kPull}) {
    for (storage::IndexKind kind : {storage::IndexKind::kHash,
                                    storage::IndexKind::kSorted}) {
      core::EngineConfig config = harness::InterpretedConfig(true);
      config.engine_style = style;
      config.index_kind = kind;
      harness::Measurement m =
          harness::MeasureMedian(factory, config, sizes.reps);
      if (reference == 0) reference = m.seconds;
      const std::string label = std::string(ir::EngineStyleName(style)) +
                                " + " + storage::IndexKindName(kind);
      table.AddRow({label, harness::FormatSeconds(m.seconds),
                    harness::FormatSpeedup(reference / m.seconds),
                    std::to_string(m.result_size)});
    }
  }
  table.Print();
  std::printf("\nExpected shape: push vs pull differ only in per-row "
              "overhead; hash probes beat\nsorted probes on point lookups "
              "(sorted buys ordered range scans instead).\n");
  return 0;
}
