// Reproduces Fig. 10: ahead-of-time ("macro") vs online compilation on
// the microbenchmarks — speedup over the unoptimized interpreted query of:
//   JIT-lambda                    (no information before execution),
//   Macro Facts+rules (online)    (AOT plan from facts+rules, + online
//                                  IRGenerator reordering),
//   Macro Rules (online)          (AOT plan from rules only, + online),
//   Macro Facts+rules             (AOT plan only),
//   Macro Rules                   (AOT plan only).
// AOT planning happens in Prepare(), so its cost is offline, as in §VI-C.

#include "bench_common.h"

namespace {

using namespace carac;

core::EngineConfig AotConfig(bool facts, bool online) {
  core::EngineConfig config;
  config.aot_reorder = true;
  config.aot.use_fact_cardinalities = facts;
  if (online) {
    config.mode = core::EvalMode::kJit;
    config.jit.backend = backends::BackendKind::kIRGenerator;
    config.jit.granularity = core::Granularity::kUnionAll;
  }
  return config;
}

}  // namespace

int main() {
  const bench::Sizes sizes = bench::Sizes::Get();
  std::printf("Fig. 10: ahead-of-time and online compilation — speedup "
              "over \"unoptimized\" (microbenchmarks)\n\n");

  const std::vector<std::string> benchmarks = {"Ackermann", "Fibonacci",
                                               "Primes"};
  std::vector<std::string> headers = {"configuration"};
  for (const auto& b : benchmarks) headers.push_back(b);
  harness::TablePrinter table(headers);

  std::vector<double> baselines;
  for (const auto& b : benchmarks) {
    auto factory =
        bench::Factory(b, analysis::RuleOrder::kUnoptimized, sizes);
    baselines.push_back(
        harness::MeasureMedian(factory, harness::InterpretedConfig(true),
                               sizes.reps)
            .seconds);
  }

  struct Config {
    const char* label;
    core::EngineConfig config;
  };
  const Config configs[] = {
      {"JIT-lambda",
       harness::JitConfigOf(backends::BackendKind::kLambda, false, true,
                            core::Granularity::kSpj,
                            backends::CompileMode::kFull)},
      {"Macro Facts+rules (online)", AotConfig(true, true)},
      {"Macro Rules (online)", AotConfig(false, true)},
      {"Macro Facts+rules", AotConfig(true, false)},
      {"Macro Rules", AotConfig(false, false)},
  };

  for (const Config& c : configs) {
    std::vector<std::string> row = {c.label};
    for (size_t i = 0; i < benchmarks.size(); ++i) {
      auto factory = bench::Factory(benchmarks[i],
                                    analysis::RuleOrder::kUnoptimized, sizes);
      const double s =
          harness::MeasureMedian(factory, c.config, sizes.reps).seconds;
      row.push_back(s > 0 ? harness::FormatSpeedup(baselines[i] / s) : "-");
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\nExpected shape: every configuration beats the unoptimized "
              "baseline; facts+rules\ngenerally beats rules-only; "
              "online+offline combined is best for most queries.\n");
  return 0;
}
