// Ablation (design choice of §V-B2): how compilation granularity affects
// end-to-end time — higher levels compile rarely with staler statistics,
// lower levels compile per-join with the freshest statistics.

#include "bench_common.h"

int main() {
  using namespace carac;
  const bench::Sizes sizes = bench::Sizes::Get();
  auto factory = bench::Factory("InvFuns", analysis::RuleOrder::kUnoptimized,
                                sizes);
  const double base =
      harness::MeasureMedian(factory, harness::InterpretedConfig(true),
                             sizes.reps)
          .seconds;
  std::printf("Ablation: compilation granularity (InvFuns, unoptimized "
              "input, lambda backend)\ninterpreted baseline: %s s\n\n",
              harness::FormatSeconds(base).c_str());

  harness::TablePrinter table(
      {"granularity", "time (s)", "speedup", "compilations", "reorders"});
  const core::Granularity levels[] = {
      core::Granularity::kProgram, core::Granularity::kDoWhile,
      core::Granularity::kUnionAll, core::Granularity::kUnion,
      core::Granularity::kSpj};
  for (core::Granularity g : levels) {
    harness::Measurement m = harness::MeasureMedian(
        factory,
        harness::JitConfigOf(backends::BackendKind::kLambda, false, true, g,
                             backends::CompileMode::kFull),
        sizes.reps);
    table.AddRow({core::GranularityName(g), harness::FormatSeconds(m.seconds),
                  harness::FormatSpeedup(base / m.seconds),
                  std::to_string(m.stats.compilations),
                  std::to_string(m.stats.compiled_invocations)});
  }
  table.Print();
  std::printf("\nExpected shape: Program-level compiles once with empty "
              "deltas (stale orders);\nper-iteration levels adapt; "
              "SPJ-level has the freshest stats but most compiles.\n");
  return 0;
}
