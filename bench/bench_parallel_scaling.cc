// Thread-scaling of the parallel semi-naive fixpoint
// (EngineConfig::num_threads): transitive closure and Andersen's
// points-to, interpreted push engine, indexed, at 1/2/4/8 threads. The
// inputs are sized up from the figure benches so the rule deltas stay
// comfortably above the parallel dispatch threshold for most of the
// fixpoint — this is the workload regime the worker pool exists for.
//
// Besides the human table, each measurement prints a machine-readable
//   SCALING <workload> threads=<n> seconds=<s> speedup=<x>
// line that scripts/run_benches.sh folds into the BENCH_*.json snapshot.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/factgen.h"
#include "bench_common.h"

int main() {
  using namespace carac;
  const bool large = bench::LargeScale();
  const bench::Sizes sizes = bench::Sizes::Get();

  struct ScalingWorkload {
    const char* name;
    harness::WorkloadFactory factory;
  };
  std::vector<ScalingWorkload> workloads;

  const int64_t tc_vertices = large ? 4000 : 1200;
  const int64_t tc_edges = tc_vertices * 4;
  workloads.push_back({"tc", [=] {
                         const auto edges = analysis::GenerateSparseGraph(
                             /*seed=*/11, tc_vertices, tc_edges,
                             /*zipf_s=*/1.1);
                         return analysis::MakeTransitiveClosure(
                             edges, analysis::RuleOrder::kHandOptimized);
                       }});
  analysis::SListConfig andersen;
  andersen.scale = large ? 8 : 4;
  workloads.push_back({"andersen", [=] {
                         return analysis::MakeAndersen(
                             andersen, analysis::RuleOrder::kHandOptimized);
                       }});

  std::printf("Parallel scaling: semi-naive fixpoint wall-clock by "
              "num_threads\n\n");
  harness::TablePrinter table(
      {"workload", "1 thread (s)", "2", "4", "8", "speedup@4"});

  for (const ScalingWorkload& w : workloads) {
    std::vector<std::string> row = {w.name};
    double base = 0;
    double at4 = 0;
    for (int threads : {1, 2, 4, 8}) {
      core::EngineConfig config = harness::InterpretedConfig(true);
      config.num_threads = threads;
      harness::Measurement m =
          harness::MeasureMedian(w.factory, config, sizes.reps);
      if (!m.ok) {
        std::fprintf(stderr, "error: %s at %d threads: %s\n", w.name,
                     threads, m.error.c_str());
        return 1;
      }
      if (threads == 1) base = m.seconds;
      if (threads == 4) at4 = m.seconds;
      const double speedup = m.seconds > 0 ? base / m.seconds : 0;
      std::printf("SCALING %s threads=%d seconds=%.4f speedup=%.2f\n",
                  w.name, threads, m.seconds, speedup);
      row.push_back(threads == 1 ? harness::FormatSeconds(m.seconds)
                                 : harness::FormatSeconds(m.seconds) + " (" +
                                       harness::FormatSpeedup(speedup) + ")");
    }
    row.push_back(at4 > 0 ? harness::FormatSpeedup(base / at4) : "-");
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\nExpected shape: near-linear scaling while deltas are "
              "large; the tail\niterations (tiny deltas) stay "
              "single-threaded by design, so speedup\nflattens below the "
              "thread count.\n");
  return 0;
}
