// Adaptive re-kinding convergence on a shifting workload. The driver
// replays the same probe stream — a point-only phase, a range-dominated
// phase, a mixed phase — against one relation under (a) every static
// IndexKind and (b) the adaptive policy starting from a deliberately
// neutral kind, recording per-phase time. The claims this bench stands
// on (EXPERIMENTS.md "Self-tuning indexes"):
//
//   convergence   within each phase the policy migrates to the kind the
//                 static sweep says is best, within hysteresis+cooldown
//                 epochs, and the re-kind events say so explicitly; the
//                 steady state (median of each phase's last epochs, after
//                 migrations settle) lands within ~10% of the best static
//                 kind FOR THAT PHASE;
//   total cost    the full stream — adaptation tax included: epochs spent
//                 mis-organized while hysteresis clears, plus the
//                 rebuilds themselves — is reported against the best
//                 single static kind, which must compromise across
//                 phases. (The adaptive-indexing literature separates
//                 these two: steady state is the convergence claim, the
//                 full stream is what a too-short phase costs you.)
//
// This drives Relation/AccessProfiler/AdaptiveIndexPolicy directly
// rather than through a Datalog program, so the phase mix is exactly
// controlled. (Engine-driven range traffic exists too: range pushdown
// lowers comparison builtins onto ProbeRange, and incremental_test's
// RangeDemandRekindsHashToOrdered covers the program-driven path
// end-to-end.) Hash-kind range demands fall back to a full filtered
// scan — exactly what a mis-organized column costs in practice, and
// the reason the policy exists.
//
// Machine-readable ADAPTIVE lines feed scripts/run_benches.sh; --micro
// shrinks the workload for the CI bench-smoke job.

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ir/exec_context.h"
#include "optimizer/adaptive.h"
#include "storage/database.h"
#include "storage/index.h"
#include "storage/relation.h"
#include "util/timer.h"

namespace {

using namespace carac;
using storage::DbKind;
using storage::IndexKind;
using storage::RelationId;
using storage::RowId;
using storage::Value;

constexpr IndexKind kStaticKinds[] = {IndexKind::kHash, IndexKind::kSorted,
                                      IndexKind::kBtree,
                                      IndexKind::kSortedArray,
                                      IndexKind::kLearned};

struct Phase {
  const char* name;
  int64_t point_probes;  // per epoch
  int64_t range_probes;  // per epoch
  int epochs;
};

struct Sizes {
  int64_t rows;
  int64_t keys;  // distinct key values
  int64_t span;  // range width in key values
  std::vector<Phase> phases;
};

Sizes GetSizes(bool micro) {
  Sizes s;
  if (micro) {
    s.rows = 20000;
    s.keys = 2048;
    s.span = 16;
    s.phases = {{"points", 2000, 0, 6},
                {"ranges", 100, 500, 6},
                {"mixed", 1600, 400, 6}};
  } else {
    s.rows = 200000;
    s.keys = 8192;
    s.span = 32;
    s.phases = {{"points", 20000, 0, 8},
                {"ranges", 1000, 5000, 8},
                {"mixed", 16000, 4000, 8}};
  }
  return s;
}

/// One database per configuration, identical contents: keys round-robin
/// over [0, keys), epoch closed after the load so ordered kinds measure
/// their stable prefix.
void BuildDatabase(IndexKind kind, const Sizes& s, storage::DatabaseSet* db,
                   RelationId* rel) {
  *rel = db->AddRelation("R", 2);
  db->DeclareIndex(*rel, 0, kind);
  storage::Relation& derived = db->Get(*rel, DbKind::kDerived);
  for (int64_t i = 0; i < s.rows; ++i) {
    derived.Insert({i % s.keys, i});
  }
  db->AdvanceEpoch();
}

/// Replays one epoch of `phase`'s probe mix, interleaved point/range in a
/// deterministic pseudo-random key order, recording demand into
/// `profiler` exactly like the evaluators do. Returns accumulated rows
/// (a checksum: every configuration must agree).
size_t RunEpochProbes(const storage::DatabaseSet& db, RelationId rel,
                      const Phase& phase, const Sizes& s,
                      ir::AccessProfiler* profiler) {
  const storage::Relation& derived = db.Get(rel, DbKind::kDerived);
  ir::ColumnProbeStats* stats = profiler->Slot(rel, 0);
  size_t hits = 0;
  std::vector<RowId> out;
  const int64_t total = phase.point_probes + phase.range_probes;
  int64_t points_done = 0, ranges_done = 0;
  for (int64_t op = 0; op < total; ++op) {
    // Interleave so neither flavour gets the cache to itself.
    const bool do_range =
        ranges_done < phase.range_probes &&
        (points_done >= phase.point_probes ||
         op * phase.range_probes >= ranges_done * total + total / 2);
    if (!do_range) {
      const Value key =
          static_cast<Value>((points_done * 2654435761u) % s.keys);
      const storage::RowCursor cursor = derived.Probe(0, key);
      stats->point_probes++;
      stats->point_hits += !cursor.empty();
      hits += cursor.size();
      ++points_done;
    } else {
      const Value lo =
          static_cast<Value>((ranges_done * 40503u) % (s.keys - s.span));
      out.clear();
      stats->range_probes++;
      const util::Status status =
          derived.ProbeRange(0, lo, lo + s.span - 1, &out);
      if (status.ok()) {
        hits += out.size();
      } else {
        // Hash organization: the demand still exists, the column just
        // cannot serve it — pay the filtered full scan it really costs.
        for (RowId row = 0; row < derived.NumRows(); ++row) {
          const Value key = derived.View(row)[0];
          if (key >= lo && key <= lo + s.span - 1) ++hits;
        }
      }
      ++ranges_done;
    }
  }
  return hits;
}

double Seconds(double s) { return s > 0 ? s : 0; }

/// Minimum of the last `n` entries (the post-convergence epochs): the
/// noise-robust microbench estimator — frequency ramps and page-cache
/// warm-up only ever inflate an epoch, never deflate it.
double SteadyState(const std::vector<double>& epoch_seconds, size_t n) {
  if (n > epoch_seconds.size()) n = epoch_seconds.size();
  double best = epoch_seconds.back();
  for (size_t i = epoch_seconds.size() - n; i < epoch_seconds.size(); ++i) {
    best = std::min(best, epoch_seconds[i]);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool micro = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--micro") == 0) {
      micro = true;
    } else {
      std::fprintf(stderr, "usage: %s [--micro]\n", argv[0]);
      return 2;
    }
  }
  const Sizes s = GetSizes(micro);

  std::printf("Adaptive convergence: %lld rows, %lld keys, %zu phases "
              "(shifting point/range mix)\n\n",
              static_cast<long long>(s.rows),
              static_cast<long long>(s.keys), s.phases.size());

  // Post-convergence window: with 2-epoch hysteresis + 2-epoch cooldown
  // the policy settles by mid-phase; the last 4 epochs are steady state.
  constexpr size_t kSteadyWindow = 4;

  // ---- Static sweep: every kind replays the whole shifting stream ----
  size_t want_hits = 0;
  bool have_want = false;
  std::vector<double> static_totals;
  // [kind][phase] = steady-state per-epoch seconds.
  std::vector<std::vector<double>> static_steady;
  for (IndexKind kind : kStaticKinds) {
    storage::DatabaseSet db;
    RelationId rel = 0;
    BuildDatabase(kind, s, &db, &rel);
    ir::AccessProfiler profiler;  // Recorded but unconsumed: no policy.
    double total = 0;
    size_t hits = 0;
    std::vector<double> steady;
    for (const Phase& phase : s.phases) {
      std::vector<double> epoch_seconds;
      for (int e = 0; e < phase.epochs; ++e) {
        util::Timer timer;
        hits += RunEpochProbes(db, rel, phase, s, &profiler);
        epoch_seconds.push_back(Seconds(timer.ElapsedSeconds()));
        db.AdvanceEpoch();
      }
      double sec = 0;
      for (double t : epoch_seconds) total += t, sec += t;
      steady.push_back(SteadyState(epoch_seconds, kSteadyWindow));
      std::printf("ADAPTIVE config=static-%s phase=%s epochs=%d "
                  "seconds=%.6f steady_epoch=%.6f\n",
                  storage::IndexKindName(kind), phase.name, phase.epochs,
                  sec, steady.back());
    }
    static_totals.push_back(total);
    static_steady.push_back(steady);
    if (!have_want) {
      want_hits = hits;
      have_want = true;
    } else if (hits != want_hits) {
      std::fprintf(stderr, "error: %s diverged (%zu hits != %zu)\n",
                   storage::IndexKindName(kind), hits, want_hits);
      return 1;
    }
  }

  size_t best_static = 0;
  for (size_t i = 1; i < static_totals.size(); ++i) {
    if (static_totals[i] < static_totals[best_static]) best_static = i;
  }

  // ---- Adaptive run: policy armed, starting from a neutral kind ----
  storage::DatabaseSet db;
  RelationId rel = 0;
  BuildDatabase(IndexKind::kBtree, s, &db, &rel);
  ir::AccessProfiler profiler;
  optimizer::AdaptiveIndexConfig pc;
  pc.min_probes = 256;  // Every epoch here clears the evidence gate.
  optimizer::AdaptiveIndexPolicy policy(pc);
  double adaptive_total = 0, rekind_total = 0;
  size_t adaptive_hits = 0;
  std::vector<double> adaptive_steady;
  for (const Phase& phase : s.phases) {
    std::vector<double> epoch_seconds;
    for (int e = 0; e < phase.epochs; ++e) {
      util::Timer timer;
      adaptive_hits += RunEpochProbes(db, rel, phase, s, &profiler);
      epoch_seconds.push_back(Seconds(timer.ElapsedSeconds()));
      util::Timer rekind_timer;
      policy.ObserveEpoch(&db, profiler);  // May RedeclareIndex.
      rekind_total += rekind_timer.ElapsedSeconds();
      db.AdvanceEpoch();
    }
    double sec = 0;
    for (double t : epoch_seconds) adaptive_total += t, sec += t;
    adaptive_steady.push_back(SteadyState(epoch_seconds, kSteadyWindow));
    std::printf("ADAPTIVE config=adaptive phase=%s epochs=%d seconds=%.6f "
                "steady_epoch=%.6f kind=%s\n",
                phase.name, phase.epochs, sec, adaptive_steady.back(),
                storage::IndexKindName(
                    db.Get(rel, DbKind::kDerived).IndexKindOf(0)));
  }
  if (adaptive_hits != want_hits) {
    std::fprintf(stderr, "error: adaptive diverged (%zu hits != %zu)\n",
                 adaptive_hits, want_hits);
    return 1;
  }
  for (const optimizer::RekindEvent& event : policy.events()) {
    std::printf("ADAPTIVE rekind epoch=%llu col=%u from=%s to=%s\n",
                static_cast<unsigned long long>(event.epoch), event.column,
                storage::IndexKindName(event.from),
                storage::IndexKindName(event.to));
  }

  // The convergence claim: per phase, steady-state adaptive epochs vs
  // the best static kind's steady state FOR THAT PHASE.
  double worst_steady_ratio = 0;
  for (size_t p = 0; p < s.phases.size(); ++p) {
    double best = static_steady[0][p];
    size_t best_kind = 0;
    for (size_t k = 1; k < static_steady.size(); ++k) {
      if (static_steady[k][p] < best) {
        best = static_steady[k][p];
        best_kind = k;
      }
    }
    const double ratio = best > 0 ? adaptive_steady[p] / best : 0;
    if (ratio > worst_steady_ratio) worst_steady_ratio = ratio;
    std::printf("ADAPTIVE steady phase=%s adaptive_epoch=%.6f "
                "best_kind=%s best_epoch=%.6f ratio=%.3f\n",
                s.phases[p].name, adaptive_steady[p],
                storage::IndexKindName(kStaticKinds[best_kind]), best,
                ratio);
  }

  const double full_ratio = static_totals[best_static] > 0
                                ? adaptive_total / static_totals[best_static]
                                : 0;
  std::printf("\nADAPTIVE summary adaptive=%.6f rekind_overhead=%.6f "
              "best_static=%s best=%.6f full_ratio=%.3f "
              "worst_steady_ratio=%.3f rekinds=%zu\n",
              adaptive_total, rekind_total,
              storage::IndexKindName(kStaticKinds[best_static]),
              static_totals[best_static], full_ratio, worst_steady_ratio,
              policy.events().size());
  if (policy.events().empty()) {
    std::fprintf(stderr,
                 "error: the shifting workload triggered no re-kinds\n");
    return 1;
  }
  return 0;
}
