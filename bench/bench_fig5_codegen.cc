// Reproduces Fig. 5: code-generation time of the quotes backend by
// compilation granularity (ProgramOp ... Select-Project-Join), for Full
// vs Snippet compilation and warm vs cold compiler.
//
// Cold = the generated source is new (full external compiler invocation);
// warm = the process-wide source cache already holds the artifact (the
// analog of an already-warm JIT compiler).

#include <cstdio>

#include "backends/quotes_backend.h"
#include "bench_common.h"
#include "harness/table.h"
#include "ir/lowering.h"
#include "util/timer.h"

namespace {

using namespace carac;

/// First node of the requested kind (depth-first).
ir::IROp* FindNode(ir::IROp* op, ir::OpKind kind) {
  if (op->kind == kind) return op;
  for (auto& child : op->children) {
    if (ir::IROp* found = FindNode(child.get(), kind)) return found;
  }
  return nullptr;
}

double CompileMs(backends::QuotesBackend* backend, const ir::IROp& node,
                 const optimizer::StatsSnapshot& stats,
                 backends::CompileMode mode) {
  backends::CompileRequest request;
  request.subtree = node.Clone();
  request.stats = stats;
  request.mode = mode;
  util::Timer timer;
  std::unique_ptr<backends::CompiledUnit> unit;
  CARAC_CHECK_OK(backend->Compile(std::move(request), &unit));
  return timer.ElapsedMillis();
}

}  // namespace

int main() {
  const bench::Sizes sizes = bench::Sizes::Get();
  auto factory = bench::Factory("CSPA", analysis::RuleOrder::kHandOptimized,
                                sizes);
  analysis::Workload workload = factory();
  workload.program->db().SetIndexingEnabled(true);
  ir::IRProgram irp;
  CARAC_CHECK_OK(ir::LowerProgram(workload.program.get(), true, &irp));
  const optimizer::StatsSnapshot stats =
      optimizer::StatsSnapshot::Capture(workload.program->db());

  std::printf("Fig. 5: quotes code-generation time (ms) by granularity "
              "(CSPA program)\n\n");

  const struct {
    const char* label;
    ir::OpKind kind;
  } levels[] = {
      {"ProgramOp", ir::OpKind::kProgram},
      {"DoWhileOp", ir::OpKind::kDoWhile},
      {"UnionOp*", ir::OpKind::kUnionAll},
      {"UnionOp", ir::OpKind::kUnion},
      {"SPJ", ir::OpKind::kSpj},
      {"SwapClearOp", ir::OpKind::kSwapClear},
  };

  backends::QuotesBackend backend;
  for (auto mode : {backends::CompileMode::kFull,
                    backends::CompileMode::kSnippet}) {
    const bool full = mode == backends::CompileMode::kFull;
    harness::TablePrinter table(
        {full ? "granularity (Full)" : "granularity (Snippet)",
         "cold (ms)", "warm (ms)"});
    for (const auto& level : levels) {
      ir::IROp* node = FindNode(irp.root.get(), level.kind);
      if (node == nullptr) continue;
      backends::ClearQuotesCache();
      const double cold = CompileMs(&backend, *node, stats, mode);
      const double warm = CompileMs(&backend, *node, stats, mode);
      char cold_s[32], warm_s[32];
      std::snprintf(cold_s, sizeof(cold_s), "%.2f", cold);
      std::snprintf(warm_s, sizeof(warm_s), "%.3f", warm);
      table.AddRow({level.label, cold_s, warm_s});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("Cold pays the external compiler; warm is a cache hit, as "
              "with a warmed-up JIT.\n");
  return 0;
}
