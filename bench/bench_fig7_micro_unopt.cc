// Reproduces Fig. 7: microbenchmark speedup of the JIT configurations
// over the *unoptimized* interpreted input (Ackermann, Fibonacci, Primes;
// the paper plots this on a log scale).

#include "bench_common.h"

int main() {
  using namespace carac;
  const bench::Sizes sizes = bench::Sizes::Get();
  bench::PrintSpeedupFigure(
      "Fig. 7: microbenchmarks — speedup over \"unoptimized\" (log-scale "
      "in the paper)",
      {{"Ackermann", false}, {"Fibonacci", false}, {"Primes", false}},
      analysis::RuleOrder::kUnoptimized,
      /*include_hand_row=*/true, sizes);
  std::printf("\nExpected shape: short-running queries amortize less "
              "compilation cost, so\nlightweight backends (IRGenerator, "
              "lambda) win and quotes speedups shrink.\n");
  return 0;
}
