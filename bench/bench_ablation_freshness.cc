// Ablation (design choice of §V-B2): the freshness-test threshold sweep.
// Threshold 0 recompiles whenever relative cardinalities move at all;
// threshold 1 never recompiles after the first compilation.

#include "bench_common.h"

int main() {
  using namespace carac;
  const bench::Sizes sizes = bench::Sizes::Get();
  auto factory = bench::Factory("CSPA", analysis::RuleOrder::kUnoptimized,
                                sizes);
  const double base =
      harness::MeasureMedian(factory, harness::InterpretedConfig(true),
                             sizes.reps)
          .seconds;
  std::printf("Ablation: freshness threshold (CSPA, unoptimized input, "
              "lambda backend, Union granularity)\ninterpreted baseline: "
              "%s s\n\n",
              harness::FormatSeconds(base).c_str());

  harness::TablePrinter table({"threshold", "time (s)", "speedup",
                               "compilations", "freshness skips"});
  for (double threshold : {0.0, 0.01, 0.05, 0.10, 0.25, 0.50, 1.0}) {
    core::EngineConfig config = harness::JitConfigOf(
        backends::BackendKind::kLambda, false, true,
        core::Granularity::kUnion, backends::CompileMode::kFull);
    config.jit.freshness_threshold = threshold;
    harness::Measurement m =
        harness::MeasureMedian(factory, config, sizes.reps);
    char t[16];
    std::snprintf(t, sizeof(t), "%.2f", threshold);
    table.AddRow({t, harness::FormatSeconds(m.seconds),
                  harness::FormatSpeedup(base / m.seconds),
                  std::to_string(m.stats.compilations),
                  std::to_string(m.stats.freshness_skips)});
  }
  table.Print();
  std::printf("\nExpected shape: tiny thresholds over-compile, huge "
              "thresholds under-adapt;\na moderate threshold balances "
              "both (the paper's tunable trade-off).\n");
  return 0;
}
